#!/usr/bin/env bash
# Perf-regression tripwire (warn-only). Two legs:
#
#   1. Re-run the full bench sweep at the PINNED baseline config (shorter
#      and smaller than the paper config, so it fits in CI) and diff every
#      (bench, system, workload) record against the committed baseline in
#      bench_results/. Throughput drops >25% are flagged.
#   2. Measure the tracing tax: run Figure 9 untraced, then traced with
#      sampling disabled (events recorded, everything discarded at op end
#      — the always-on production mode), and report the CFS throughput
#      delta. Target: within 3%.
#
# This script NEVER fails the build: simulated-time throughput on shared
# CI runners is noisy, so the output is an artifact for humans (and for
# the PR description), not a gate. It exits nonzero only when it cannot
# run at all (missing build, missing python3).
#
# Usage: scripts/bench_compare.sh [fresh_results_dir]
#   With an argument, skips the sweep and compares an existing results
#   directory (e.g. one produced by a previous run_all_benches.sh).
set -u
cd "$(dirname "$0")/.."

BASELINE_DIR=bench_results
command -v python3 >/dev/null || { echo "bench_compare: python3 required" >&2; exit 2; }
[ -x build/bench/bench_fig9_overall ] || {
  echo "bench_compare: build/bench is missing; build first" >&2; exit 2; }

# The pinned config the committed baseline was generated with (see
# bench_results/BASELINE.md). Overridable for local experiments, but then
# the comparison is apples-to-oranges.
export CFS_BENCH_DURATION_MS="${CFS_BENCH_DURATION_MS:-400}"
export CFS_BENCH_CLIENTS="${CFS_BENCH_CLIENTS:-12}"
export CFS_BENCH_LARGEDIR_FILES="${CFS_BENCH_LARGEDIR_FILES:-3000}"
echo "bench_compare: pinned config duration=${CFS_BENCH_DURATION_MS}ms" \
     "clients=${CFS_BENCH_CLIENTS} largedir=${CFS_BENCH_LARGEDIR_FILES}"

FRESH_DIR="${1:-}"
if [ -z "$FRESH_DIR" ]; then
  FRESH_DIR=$(mktemp -d)
  echo "bench_compare: running sweep into $FRESH_DIR ..."
  CFS_BENCH_JSON_DIR="$FRESH_DIR" ./run_all_benches.sh > "$FRESH_DIR/sweep.log" 2>&1 ||
    echo "bench_compare: WARNING: some benches failed (see $FRESH_DIR/sweep.log)"
fi

# ---- Leg 1: diff fresh results against the committed baseline. --------
python3 - "$BASELINE_DIR" "$FRESH_DIR" <<'EOF'
import glob, json, os, sys

base_dir, fresh_dir = sys.argv[1], sys.argv[2]
THRESHOLD = 0.25  # >25% throughput drop is a regression warning

def load(path):
    out = {}
    with open(path) as f:
        doc = json.load(f)
    for r in doc.get("results", []):
        out[(r["system"], r["workload"])] = r
    return doc.get("bench", os.path.basename(path)), out

regressions, improvements, compared, missing = [], [], 0, []
for base_path in sorted(glob.glob(os.path.join(base_dir, "BENCH_*.json"))):
    name = os.path.basename(base_path)
    fresh_path = os.path.join(fresh_dir, name)
    if not os.path.exists(fresh_path):
        missing.append(name)
        continue
    bench, base = load(base_path)
    _, fresh = load(fresh_path)
    for key, b in base.items():
        f = fresh.get(key)
        if f is None or b["ops_per_sec"] <= 0:
            continue
        compared += 1
        delta = (f["ops_per_sec"] - b["ops_per_sec"]) / b["ops_per_sec"]
        row = (bench, key[0], key[1], b["ops_per_sec"], f["ops_per_sec"], delta)
        if delta < -THRESHOLD:
            regressions.append(row)
        elif delta > THRESHOLD:
            improvements.append(row)

print(f"\nbench_compare: {compared} (bench, system, workload) records compared")
for name in missing:
    print(f"bench_compare: WARNING: no fresh results for {name} (bench crashed?)")

def show(rows, label):
    for bench, system, workload, b, f, d in sorted(rows, key=lambda r: r[5]):
        print(f"  {label} {bench} {system}/{workload}: "
              f"{b:.0f} -> {f:.0f} op/s ({d * 100:+.1f}%)")

if regressions:
    print(f"bench_compare: WARNING: {len(regressions)} throughput "
          f"regression(s) beyond {THRESHOLD:.0%} (warn-only, not a gate):")
    show(regressions, "REGRESSION")
else:
    print(f"bench_compare: no throughput regressions beyond {THRESHOLD:.0%}")
if improvements:
    print(f"bench_compare: {len(improvements)} record(s) improved beyond "
          f"{THRESHOLD:.0%}:")
    show(improvements, "improved")
EOF

# ---- Leg 2: the tracing tax on Figure 9. ------------------------------
# Untraced run vs traced-with-sampling-disabled run (sample_every=0 and
# slow threshold 0: with no retention trigger armed, BeginOp refuses to
# activate and every span costs one thread-local boolean — the
# steady-state price of shipping with the tracer compiled in). Runs
# longer than the pinned sweep because the verdict is a ratio of two
# noisy throughput samples; the judgement is on the AGGREGATE CFS
# throughput (per-row numbers are informational — single-client "light"
# rows see only a few hundred ops even at this duration).
TAX_DURATION_MS="${CFS_TAX_DURATION_MS:-1000}"
echo
echo "bench_compare: measuring tracing overhead on fig9 (CFS rows," \
     "${TAX_DURATION_MS}ms runs, ABBA order) ..."
TAX_DIR=$(mktemp -d)
# ABBA interleaving (untraced, traced, traced, untraced): single-machine
# throughput drifts over minutes (CPU frequency, steal, page cache);
# symmetric ordering cancels linear drift out of the mode comparison.
i=0
untraced_files=""
traced_files=""
for mode in u t t u; do
  i=$((i + 1))
  d="$TAX_DIR/run$i-$mode"
  mkdir -p "$d"
  if [ "$mode" = u ]; then
    CFS_BENCH_DURATION_MS="$TAX_DURATION_MS" CFS_BENCH_JSON_DIR="$d" \
      build/bench/bench_fig9_overall > "$d/fig9.log" 2>&1 ||
      echo "bench_compare: WARNING: untraced fig9 run $i failed"
    untraced_files="$untraced_files $d/BENCH_fig9_overall.json"
  else
    CFS_BENCH_DURATION_MS="$TAX_DURATION_MS" CFS_BENCH_JSON_DIR="$d" \
      CFS_BENCH_TRACE_OUT="$d" CFS_TRACE_SAMPLE_EVERY=0 CFS_TRACE_SLOW_US=0 \
      build/bench/bench_fig9_overall > "$d/fig9.log" 2>&1 ||
      echo "bench_compare: WARNING: traced fig9 run $i failed"
    traced_files="$traced_files $d/BENCH_fig9_overall.json"
  fi
done

python3 - "$untraced_files" "$traced_files" <<'EOF'
import json, sys

def load_cfs(paths):
    # workload -> summed ops_per_sec across the mode's runs
    out = {}
    n = 0
    for path in paths.split():
        try:
            with open(path) as f:
                rows = json.load(f)["results"]
        except OSError as e:
            print(f"bench_compare: WARNING: missing tax-leg results ({e})")
            continue
        n += 1
        for r in rows:
            if r["system"] == "CFS":
                out[r["workload"]] = out.get(r["workload"], 0.0) \
                    + r["ops_per_sec"]
    return out, n

b, nb = load_cfs(sys.argv[1])
t, nt = load_cfs(sys.argv[2])
if nb == 0 or nt == 0:
    print("bench_compare: WARNING: tracing-tax leg skipped (no results)")
    sys.exit(0)

total_b = total_t = 0.0
worst = (0.0, "-")
for wl, ops in sorted(b.items()):
    if wl not in t or ops <= 0:
        continue
    total_b += ops / nb
    total_t += t[wl] / nt
    delta = (t[wl] / nt - ops / nb) / (ops / nb)
    if abs(delta) > abs(worst[0]):
        worst = (delta, wl)
    print(f"  fig9 CFS {wl}: untraced {ops / nb:.0f} -> "
          f"traced(sampling off) {t[wl] / nt:.0f} op/s ({delta * 100:+.1f}%)")
if total_b > 0:
    agg = (total_t - total_b) / total_b
    verdict = "within" if abs(agg) <= 0.03 else "EXCEEDS"
    print(f"bench_compare: tracing tax (fig9 CFS, sampling disabled, "
          f"{nb}+{nt} interleaved runs): {agg * 100:+.2f}% aggregate — "
          f"{verdict} the 3% target "
          f"(noisiest row: {worst[0] * 100:+.1f}% {worst[1]})")
EOF

echo
echo "bench_compare: done (warn-only; see above for any WARNINGs)"
exit 0
