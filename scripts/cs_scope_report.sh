#!/usr/bin/env bash
# Builds and runs the critical-section scope report (examples/
# cs_scope_report.cpp): the same metadata workload through CFS and both
# baselines, then one markdown table per system showing every exercised
# lock class, its RPC-hold policy, hold spans, and RPCs-issued-under-lock.
# Exits nonzero if any never-across-rpc class saw an RPC while held, or if
# the baselines' row locks were not measured spanning RPCs — so the report
# is a gate as well as an artifact.
#
# Usage: scripts/cs_scope_report.sh [-o FILE]   (default: stdout)
set -euo pipefail
cd "$(dirname "$0")/.."

out=""
if [[ "${1:-}" == "-o" ]]; then
  out="${2:?usage: cs_scope_report.sh [-o FILE]}"
fi

cmake -B build -S . >/dev/null
cmake --build build --target cs_scope_report -j "$(nproc)" >/dev/null

if [[ -n "$out" ]]; then
  ./build/examples/cs_scope_report | tee "$out"
  echo "cs_scope_report: wrote $out" >&2
else
  ./build/examples/cs_scope_report
fi
