#!/usr/bin/env bash
# GUARDED_BY coverage lint: every mutable data member of a class that owns a
# cfs::Mutex / cfs::SharedMutex must either carry a GUARDED_BY(mu) /
# PT_GUARDED_BY(mu) annotation or an explicit justification —
# `// tsa-coverage: allow(<reason>)` on the member line or the line above.
# The static twin of the dynamic race detector (src/common/race_detector.h):
# the detector checks the annotated discipline at runtime; this lint makes
# sure the discipline is declared in the first place.
#
# The scanner is a comment/string-stripping awk pass that tracks nested
# class/struct scopes by brace depth and only inspects lines at a class's
# own depth (method bodies nest one deeper and are ignored). A member is
# exempt when it is:
#   - static / constexpr / const (immutable or not per-instance state),
#   - a reference (the binding is fixed at construction),
#   - itself a synchronization object (Mutex / SharedMutex / CondVar,
#     std::atomic — internally ordered by definition),
#   - annotated GUARDED_BY / PT_GUARDED_BY, or
#   - escaped with a justified `tsa-coverage: allow(...)`.
# An escape with no reason (`allow` / `allow()`) is itself a failure, and
# scripts/lint_allowlist.txt can exempt whole files (marker no-guard-lint).
#
# When clang-query is on PATH an additional AST pass cross-checks the awk
# findings (see cs_scope_lint.sh for the same pattern); this machine may be
# gcc-only, so the awk pass is the gate.
#
# Usage: scripts/guarded_by_lint.sh [--grep-only]
set -euo pipefail
cd "$(dirname "$0")/.."

ALLOWLIST=scripts/lint_allowlist.txt

mapfile -t skip_files < <(awk '$1 == "no-guard-lint" { print $2 }' "$ALLOWLIST")

mapfile -t files < <(git ls-files 'src/*.h' 'src/*.cc')
scan=()
for f in "${files[@]}"; do
  skip=0
  for s in "${skip_files[@]}"; do [[ "$f" == "$s" ]] && skip=1; done
  [[ $skip -eq 0 ]] && scan+=("$f")
done
if [[ ${#scan[@]} -eq 0 ]]; then
  echo "guarded_by_lint: no files to scan" >&2
  exit 1
fi

echo "== guarded_by_lint: GUARDED_BY coverage scan (${#scan[@]} files) =="

violations=$(awk '
  function push_scope(name) {
    nscopes++;
    sname[nscopes] = name;
    sdepth[nscopes] = depth;      # depth *inside* the class body
    shas_mu[nscopes] = 0;
    sfirst[nscopes] = nmembers + 1;
  }
  function pop_scope(   i) {
    if (shas_mu[nscopes]) {
      for (i = sfirst[nscopes]; i <= nmembers; i++) {
        if (mscope[i] == nscopes) print mmsg[i];
      }
    }
    # Drop this scope'\''s buffered members.
    nmembers = sfirst[nscopes] - 1;
    nscopes--;
  }
  FNR == 1 {
    depth = 0; nscopes = 0; nmembers = 0;
    pending_class = ""; prev_allow = 0; prev_allow_empty = 0;
  }
  {
    raw = $0;
    has_allow = (raw ~ /tsa-coverage: allow\([^)][^)]*\)/);
    empty_allow = (raw ~ /tsa-coverage: allow([^(]|$)/ || raw ~ /tsa-coverage: allow\(\)/);
    if (empty_allow && !has_allow) {
      printf "%s:%d: tsa-coverage escape without a justification — write tsa-coverage: allow(<reason>)\n", FILENAME, FNR;
    }
    allow = has_allow || prev_allow;
    prev_allow = has_allow;

    line = raw;
    sub(/\/\/.*/, "", line);        # line comments
    gsub(/"[^"]*"/, "\"\"", line);  # string literals
    gsub(/'\''[^'\'']*'\''/, "", line);     # char literals

    # Class/struct scope entry. Forward declarations end in ";"; enum
    # classes are not record scopes.
    if (line ~ /(^|[ \t])(class|struct)[ \t]+[A-Za-z_]/ && line !~ /enum[ \t]+(class|struct)/ && line !~ /;[ \t]*$/) {
      cname = line;
      sub(/.*(class|struct)[ \t]+/, "", cname);
      sub(/[^A-Za-z0-9_].*/, "", cname);
      if (line ~ /{/) {
        depth += gsub(/{/, "{", line) - gsub(/}/, "}", line);
        push_scope(cname);
        next;
      }
      pending_class = cname;   # brace expected on a following line
      next;
    }
    if (pending_class != "" && line ~ /{/) {
      depth += gsub(/{/, "{", line) - gsub(/}/, "}", line);
      push_scope(pending_class);
      pending_class = "";
      next;
    }
    if (pending_class != "" && line ~ /;[ \t]*$/) pending_class = "";

    in_class = (nscopes > 0 && depth == sdepth[nscopes]);

    # Mutex ownership (checked before the depth update so one-line
    # brace-init members count at class depth).
    if (in_class && line ~ /(^|[ \t])(mutable[ \t]+)?(cfs::)?(Mutex|SharedMutex)[ \t]+[A-Za-z_]/) {
      shas_mu[nscopes] = 1;
    }

    # Candidate data member: a declaration line at class depth.
    if (in_class && line ~ /;[ \t]*$/ && !allow) {
      candidate = 1;
      if (line ~ /^[ \t]*$/) candidate = 0;
      if (line ~ /(^|[ \t])(public|private|protected)[ \t]*:/) candidate = 0;
      if (line ~ /(^|[ \t])(static|constexpr|using|typedef|friend|template|return|explicit|virtual|operator|enum|class|struct)([ \t]|$)/) candidate = 0;
      if (line ~ /(^|[ \t])(mutable[ \t]+)?const[ \t]/) candidate = 0;
      # Function declarations end in ")" + qualifiers; pure/defaulted too.
      if (line ~ /\)[ \t]*(const)?[ \t]*(noexcept)?[ \t]*(override|final)?[ \t]*;[ \t]*$/) candidate = 0;
      if (line ~ /=[ \t]*(0|default|delete)[ \t]*;[ \t]*$/) candidate = 0;
      # References bind at construction.
      if (line ~ /&[ \t]*[A-Za-z_][A-Za-z0-9_]*[ \t]*;[ \t]*$/) candidate = 0;
      # Synchronization members are ordered by definition.
      if (line ~ /(^|[ \t])(mutable[ \t]+)?(cfs::)?(Mutex|SharedMutex|CondVar)[ \t]/) candidate = 0;
      if (line ~ /std::atomic[<_]/) candidate = 0;
      # Already declared.
      if (raw ~ /GUARDED_BY|PT_GUARDED_BY/) candidate = 0;
      # Must actually declare an identifier before the terminator.
      if (line !~ /[A-Za-z_][A-Za-z0-9_]*[ \t]*([=({[][^;]*)?;[ \t]*$/) candidate = 0;
      if (candidate) {
        nmembers++;
        mscope[nmembers] = nscopes;
        mmsg[nmembers] = sprintf("%s:%d: member of mutex-owning %s %s lacks GUARDED_BY/PT_GUARDED_BY (or tsa-coverage: allow(<reason>)): %s",
                                 FILENAME, FNR, "class", sname[nscopes], raw);
        gsub(/^[ \t]+/, "", mmsg[nmembers]);
      }
    }

    # Brace bookkeeping; close any scopes whose body ended.
    depth += gsub(/{/, "{", line) - gsub(/}/, "}", line);
    if (depth < 0) depth = 0;
    while (nscopes > 0 && depth < sdepth[nscopes]) pop_scope();
  }
  END { while (nscopes > 0) pop_scope(); }
' "${scan[@]}")

if [[ -n "$violations" ]]; then
  echo "$violations" >&2
  count=$(echo "$violations" | wc -l)
  echo "guarded_by_lint: FAILED — $count finding(s)." >&2
  echo "guarded_by_lint: declare the guard (GUARDED_BY(mu_)) or justify the" >&2
  echo "guarded_by_lint: exemption with '// tsa-coverage: allow(<reason>)'." >&2
  exit 1
fi
echo "guarded_by_lint: clean — every mutex-owning class declares its guards"

if [[ "${1:-}" == "--grep-only" ]]; then
  exit 0
fi

# ---------------------------------------------------------------------------
# clang-query AST pass: fields of mutex-owning records without a guarded_by
# attribute. Required when clang-query exists (the AST sees through any
# formatting the awk scanner might misparse); skipped with a notice on
# gcc-only machines.
if command -v clang-query >/dev/null 2>&1 && command -v clang++ >/dev/null 2>&1; then
  echo "== guarded_by_lint: clang-query AST pass =="
  cmake -B build-tsa -S . -DCMAKE_CXX_COMPILER=clang++ \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  mapfile -t cc_files < <(git ls-files 'src/*.cc')
  out=$(clang-query -p build-tsa "${cc_files[@]}" \
    -c 'match fieldDecl(unless(anyOf(hasType(hasCanonicalType(referenceType())), hasType(namedDecl(hasAnyName("Mutex","SharedMutex","CondVar"))), hasAttr("attr::GuardedBy"))), hasParent(cxxRecordDecl(has(fieldDecl(hasType(namedDecl(hasAnyName("Mutex","SharedMutex"))))))))' \
    2>/dev/null || true)
  matches=$(echo "$out" | grep -c '^Match #' || true)
  echo "guarded_by_lint: clang-query reported $matches candidate field(s)"
  echo "$out" | grep -A2 '^Match #' | head -60 || true
else
  echo "guarded_by_lint: NOTICE: clang-query not found; awk pass is the gate"
fi
