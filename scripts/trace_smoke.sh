#!/usr/bin/env bash
# Trace smoke test (a real gate, unlike bench_compare.sh): runs a short
# Figure 9 sweep with causal tracing on, then asserts the artifacts are
# usable:
#   - TRACE_fig9_overall.json is valid JSON in Chrome/Perfetto trace
#     format,
#   - at least one trace_id has causally-linked spans attributed to >=2
#     distinct cluster nodes (a complete cross-shard span tree),
#   - every slow-op log entry is at least the configured threshold.
#
# Usage: scripts/trace_smoke.sh [out_dir]
set -euo pipefail
cd "$(dirname "$0")/.."

OUT_DIR="${1:-$(mktemp -d)}"
mkdir -p "$OUT_DIR"
command -v python3 >/dev/null || { echo "trace_smoke: python3 required" >&2; exit 2; }
[ -x build/bench/bench_fig9_overall ] || {
  echo "trace_smoke: build/bench/bench_fig9_overall missing; build first" >&2
  exit 2
}

SLOW_US=2000
echo "trace_smoke: running short traced fig9 into $OUT_DIR ..."
CFS_BENCH_DURATION_MS=200 CFS_BENCH_CLIENTS=8 \
  CFS_BENCH_JSON_DIR="$OUT_DIR" CFS_BENCH_TRACE_OUT="$OUT_DIR" \
  CFS_TRACE_SAMPLE_EVERY=8 CFS_TRACE_SLOW_US=$SLOW_US \
  build/bench/bench_fig9_overall > "$OUT_DIR/fig9.log" 2>&1

python3 - "$OUT_DIR" "$SLOW_US" <<'EOF'
import collections, json, os, re, sys

out_dir, slow_us = sys.argv[1], int(sys.argv[2])
trace_path = os.path.join(out_dir, "TRACE_fig9_overall.json")
slow_path = os.path.join(out_dir, "TRACE_fig9_overall.slowops.txt")
failures = []

# 1. Valid JSON, Chrome/Perfetto trace-event shape.
with open(trace_path) as f:
    doc = json.load(f)  # raises (-> nonzero exit) on malformed JSON
events = doc.get("traceEvents", [])
spans = [e for e in events if e.get("ph") in ("X", "i")]
metas = [e for e in events if e.get("ph") == "M"]
if not spans:
    failures.append("no span events (ph=X/i) in trace")
if not any(m.get("name") == "process_name" for m in metas):
    failures.append("no process_name metadata events")
for e in spans[:200]:
    for k in ("name", "ts", "pid", "tid"):
        if k not in e:
            failures.append(f"span event missing {k!r}: {e}")
            break

# 2. At least one complete cross-shard span tree: one trace_id whose
# spans are attributed to >=2 distinct cluster nodes (pid 1 is the
# client; node pids start at 2), and whose parent links resolve.
by_trace = collections.defaultdict(list)
for e in spans:
    args = e.get("args", {})
    if "trace_id" in args:
        by_trace[args["trace_id"]].append(e)
cross = 0
for tid, evs in by_trace.items():
    node_pids = {e["pid"] for e in evs if e["pid"] >= 2}
    if len(node_pids) < 2:
        continue
    span_ids = {e["args"]["span_id"] for e in evs}
    linked = sum(1 for e in evs if e["args"].get("parent_span_id") in span_ids)
    if linked > 0:
        cross += 1
if cross == 0:
    failures.append("no trace_id with causally-linked spans on >=2 nodes")

# 3. Slow-op log: every captured entry is at least the threshold.
n_slow = 0
with open(slow_path) as f:
    for line in f:
        m = re.search(r"total=(\d+)us", line)
        if m and not line.startswith(" "):
            n_slow += 1
            if int(m.group(1)) < slow_us:
                failures.append(
                    f"slow-op entry below threshold {slow_us}us: {line.strip()}")
if n_slow == 0:
    failures.append(f"slow-op log is empty (threshold {slow_us}us)")

print(f"trace_smoke: {len(events)} trace events, {len(by_trace)} traces, "
      f"{cross} cross-shard trees, {n_slow} slow ops (>= {slow_us}us)")
if failures:
    for msg in failures:
        print(f"trace_smoke: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)
print("trace_smoke: ok")
EOF
