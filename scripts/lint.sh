#!/usr/bin/env bash
# Static-analysis gate: grep-enforced lock-discipline conventions (always),
# plus a clang -Wthread-safety build and a clang-tidy pass when those tools
# exist on PATH. The clang legs are skipped with a notice — not failed — on
# gcc-only machines, so the gate is runnable everywhere while CI with clang
# gets the full compile-time proof.
#
# Usage: scripts/lint.sh [--grep-only]
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

# ---------------------------------------------------------------------------
# Shared allowlist (scripts/lint_allowlist.txt): per-marker file exemptions
# consumed by this script, guarded_by_lint.sh, and cs_scope_lint.sh.

ALLOWLIST=scripts/lint_allowlist.txt
if [[ ! -f "$ALLOWLIST" ]]; then
  echo "lint: missing $ALLOWLIST" >&2
  exit 1
fi
# Every listed path must exist — a stale entry is a lint failure, so the
# allowlist cannot silently rot.
while read -r marker path; do
  [[ "$marker" =~ ^#|^$ ]] && continue
  if [[ ! -f "$path" ]]; then
    echo "lint: $ALLOWLIST lists missing file '$path' (marker $marker)" >&2
    fail=1
  fi
done < "$ALLOWLIST"

# Builds a chain of `grep -v` exclusions for one marker.
allowlisted() {  # usage: ... | allowlisted <marker>
  local marker="$1" expr
  expr=$(awk -v m="$marker" '$1 == m { printf "^%s:|", $2 }' "$ALLOWLIST")
  expr="${expr%|}"
  if [[ -n "$expr" ]]; then grep -vE "$expr" || true; else cat; fi
}

# ---------------------------------------------------------------------------
# Grep checks (compiler-independent, always enforced)

echo "== lint: lock-discipline grep checks =="

# 1. NO_THREAD_SAFETY_ANALYSIS is an escape hatch for code the analysis
#    cannot model. Legitimate uses are enumerated in the allowlist
#    (marker no-tsa).
bad=$(grep -rn "NO_THREAD_SAFETY_ANALYSIS" src/ tests/ \
        --include='*.h' --include='*.cc' | allowlisted no-tsa)
if [[ -n "$bad" ]]; then
  echo "lint: NO_THREAD_SAFETY_ANALYSIS outside the allowlist ($ALLOWLIST, marker no-tsa):" >&2
  echo "$bad" >&2
  fail=1
fi

# 2. Raw std synchronization types are invisible to both the thread-safety
#    analysis and the lock-order tracker; everything must go through
#    cfs::Mutex / cfs::SharedMutex / cfs::CondVar. Allowlist (marker
#    raw-std-sync): the wrappers themselves, plus the lock-order tracker and
#    the race detector — the modules cfs::Mutex calls into, which would
#    recurse if they used the wrappers.
bad=$(grep -rnE 'std::(mutex|shared_mutex|condition_variable)' src/ \
        --include='*.h' --include='*.cc' | allowlisted raw-std-sync)
if [[ -n "$bad" ]]; then
  echo "lint: raw std::mutex/shared_mutex/condition_variable in src/ (use the cfs:: wrappers):" >&2
  echo "$bad" >&2
  fail=1
fi

# 2b. Escape comments must justify themselves: a bare `tsa-coverage: allow`
#     or `cs-scope: allow` with no parenthesized reason fails.
bad=$(grep -rnE '(tsa-coverage|cs-scope): allow([^(]|\(\)|$)' src/ tests/ \
        --include='*.h' --include='*.cc' || true)
if [[ -n "$bad" ]]; then
  echo "lint: escape marker without a justification — write allow(<reason>):" >&2
  echo "$bad" >&2
  fail=1
fi

# 3. Bare assert() compiles out under NDEBUG; invariants use CFS_CHECK /
#    CFS_DCHECK (src/common/check.h).
bad=$(grep -rnE '(^|[^_[:alnum:]])assert\(' src/ \
        --include='*.h' --include='*.cc' |
      grep -v 'static_assert' | grep -vE '//.*assert\(' || true)
if [[ -n "$bad" ]]; then
  echo "lint: bare assert() in src/ (use CFS_CHECK / CFS_DCHECK from src/common/check.h):" >&2
  echo "$bad" >&2
  fail=1
fi

# 4. Lock naming convention: every cfs::Mutex / cfs::SharedMutex member is
#    constructed on one line as  Mutex mu_{"subsystem.name", rank};  so
#    docs_lint.sh can cross-check names/ranks against DESIGN.md. Catch
#    declarations that forgot the name/rank initializer.
bad=$(grep -rnE '^\s*(mutable\s+)?(cfs::)?(Mutex|SharedMutex)\s+[A-Za-z_]+\s*;' \
        src/ --include='*.h' --include='*.cc' || true)
if [[ -n "$bad" ]]; then
  echo "lint: unnamed cfs::Mutex (construct as Mutex mu_{\"subsystem.name\", rank};):" >&2
  echo "$bad" >&2
  fail=1
fi

# 5. Status / StatusOr must stay [[nodiscard]] (a dropped status is a
#    swallowed error) and the build must promote the discard warning to an
#    error. Guard both halves so neither can be silently removed.
if ! grep -q 'class \[\[nodiscard\]\] Status' src/common/status.h; then
  echo "lint: Status lost its [[nodiscard]] attribute (src/common/status.h)" >&2
  fail=1
fi
if ! grep -q 'class \[\[nodiscard\]\] StatusOr' src/common/status.h; then
  echo "lint: StatusOr lost its [[nodiscard]] attribute (src/common/status.h)" >&2
  fail=1
fi
if ! grep -q -- '-Werror=unused-result' CMakeLists.txt; then
  echo "lint: CMakeLists.txt no longer builds with -Werror=unused-result" >&2
  fail=1
fi

if [[ "$fail" -ne 0 ]]; then
  echo "lint: grep checks FAILED" >&2
  exit 1
fi
echo "lint: grep checks passed"

# ---------------------------------------------------------------------------
# GUARDED_BY coverage lint: every mutable member of a mutex-owning class must
# declare its guard (or carry a justified escape). Required, not advisory.

scripts/guarded_by_lint.sh "${1:-}"

if [[ "${1:-}" == "--grep-only" ]]; then
  exit 0
fi

# ---------------------------------------------------------------------------
# Clang thread-safety-analysis build (the compile-time proof)

CLANGXX="${CLANGXX:-clang++}"
if command -v "$CLANGXX" >/dev/null 2>&1; then
  echo "== lint: clang -Wthread-safety build (CFS_WERROR_TSA) =="
  cmake -B build-tsa -S . \
    -DCMAKE_CXX_COMPILER="$CLANGXX" \
    -DCFS_WERROR_TSA=ON >/dev/null
  cmake --build build-tsa -j
  echo "lint: thread-safety analysis clean"
else
  echo "lint: NOTICE: $CLANGXX not found; skipping -Wthread-safety build" \
       "(annotations are still compiled as no-ops by the regular build)"
fi

# ---------------------------------------------------------------------------
# clang-tidy (bugprone-*, concurrency-*, performance-* per .clang-tidy)

if command -v clang-tidy >/dev/null 2>&1 && command -v "$CLANGXX" >/dev/null 2>&1; then
  echo "== lint: clang-tidy =="
  cmake -B build-tsa -S . \
    -DCMAKE_CXX_COMPILER="$CLANGXX" \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  mapfile -t tidy_sources < <(git ls-files 'src/*.cc')
  clang-tidy -p build-tsa --quiet "${tidy_sources[@]}"
  echo "lint: clang-tidy clean"
else
  echo "lint: NOTICE: clang-tidy (or $CLANGXX) not found; skipping tidy pass"
fi

echo "lint: all available checks passed"
