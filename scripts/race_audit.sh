#!/usr/bin/env bash
# Race-audit sweep (DESIGN.md §12): drive the Figure 9 overall-throughput
# bench — the workload exercising every subsystem's annotated hot path —
# under virtual time with the dynamic race detector armed and the seeded
# schedule fuzzer perturbing lock acquisitions, RPC edges and WAL fsyncs,
# across a sweep of seeds. Any `[race]` report fails the audit; the per-seed
# logs plus a markdown summary land in the output directory, and a failing
# seed's report replays byte-identically with the same
# (CFS_SIM_SEED, CFS_SIM_FUZZ_SEED) pair.
#
# Usage: scripts/race_audit.sh [out_dir] [num_seeds]
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-race-audit-artifacts}"
SEEDS="${2:-16}"
REPORT="$OUT/RACE_AUDIT.md"
mkdir -p "$OUT"

[[ -x build/bench/bench_fig9_overall ]] || {
  echo "race_audit: build/bench/bench_fig9_overall missing; build first" >&2
  exit 2
}

{
  echo "# Race audit"
  echo
  echo "Dynamic lockset + happens-before detector (\`CFS_RACE_DETECT=1\`)"
  echo "over a ${SEEDS}-seed schedule-fuzzed (\`CFS_SIM_FUZZ=1\`) virtual-time"
  echo "Figure 9 sweep. A failing seed replays byte-identically:"
  echo '`CFS_SIM=1 CFS_SIM_SEED=<s> CFS_SIM_FUZZ=1 CFS_SIM_FUZZ_SEED=<s>`.'
  echo
  echo "| seed | bench | [race] reports |"
  echo "|-----:|-------|---------------:|"
} > "$REPORT"

fail=0
for ((s = 1; s <= SEEDS; s++)); do
  log="$OUT/fig9_seed${s}.log"
  status=ok
  if ! CFS_SIM=1 CFS_SIM_SEED="$s" CFS_SIM_FUZZ=1 CFS_SIM_FUZZ_SEED="$s" \
       CFS_RACE_DETECT=1 CFS_BENCH_JSON_DIR="$OUT" \
       ./build/bench/bench_fig9_overall > "$log" 2>&1; then
    status=FAILED
    fail=1
  fi
  races=$(grep -c '^\[race\]' "$log" || true)
  if [[ "$races" -gt 0 ]]; then
    fail=1
  fi
  echo "| $s | $status | $races |" >> "$REPORT"
  echo "race_audit: seed $s: $status, $races race report(s)"
done

if [[ "$fail" -ne 0 ]]; then
  {
    echo
    echo "## Reports"
    echo
    echo '```'
    grep -h '^\[race\]' "$OUT"/fig9_seed*.log | sort -u || true
    echo '```'
  } >> "$REPORT"
  echo "race_audit: FAILED — see $REPORT" >&2
  exit 1
fi

{
  echo
  echo "No races reported across $SEEDS fuzzed schedules."
} >> "$REPORT"
echo "race_audit: clean across $SEEDS fuzzed schedules ($REPORT)"
