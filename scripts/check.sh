#!/usr/bin/env bash
# Full check: regular build + complete test suite, a docs-consistency lint,
# then a ThreadSanitizer build running the concurrency-heavy tests (metrics
# registry, SimNet edge tables, lock manager, workload harness, the sharded
# dentry cache, and the cross-engine cache-coherence tests — the code most
# exposed to the multi-threaded client loops).
#
# Usage: scripts/check.sh [--tsan-only]
set -euo pipefail
cd "$(dirname "$0")/.."

TSAN_TESTS=(metrics_test simnet_test lock_manager_test common_test
            workload_test dentry_cache_test)

if [[ "${1:-}" != "--tsan-only" ]]; then
  echo "== regular build + full test suite =="
  cmake -B build -S . >/dev/null
  cmake --build build -j
  ctest --test-dir build --output-on-failure -j "$(nproc)"

  echo "== docs lint =="
  scripts/docs_lint.sh
fi

echo "== ThreadSanitizer build + concurrency tests =="
cmake -B build-tsan -S . -DCFS_SANITIZE=thread >/dev/null
cmake --build build-tsan -j --target "${TSAN_TESTS[@]}" cfs_core_test
for t in "${TSAN_TESTS[@]}"; do
  echo "-- $t (tsan)"
  ./build-tsan/tests/"$t"
done
echo "-- cfs_core_test coherence suite (tsan)"
./build-tsan/tests/cfs_core_test --gtest_filter='*Coherence*'

echo "== all checks passed =="
