#!/usr/bin/env bash
# Full check, four legs:
#   1. regular build + complete test suite + docs lint + static-analysis
#      lint (scripts/lint.sh: lock-discipline greps and the GUARDED_BY
#      coverage lint always; clang -Wthread-safety and clang-tidy when
#      clang is installed) + critical-section scope lint
#      (scripts/cs_scope_lint.sh: no RPC reachable under a live mutex
#      guard);
#   2. an AddressSanitizer+UBSan build running the complete test suite
#      (memory errors and UB anywhere, not just in concurrency hot spots);
#   3. a ThreadSanitizer build running the concurrency-heavy tests (metrics
#      registry, SimNet edge tables, lock manager, lock-order tracker,
#      workload harness, the sharded dentry cache, and the cross-engine
#      cache-coherence tests — the code most exposed to the multi-threaded
#      client loops).
#
# Usage: scripts/check.sh [--tsan-only|--asan-only]
set -euo pipefail
cd "$(dirname "$0")/.."

TSAN_TESTS=(metrics_test trace_event_test simnet_test lock_manager_test
            common_test lock_order_test workload_test dentry_cache_test)

if [[ "${1:-}" == "" ]]; then
  echo "== regular build + full test suite =="
  cmake -B build -S . >/dev/null
  cmake --build build -j
  ctest --test-dir build --output-on-failure -j "$(nproc)"

  echo "== docs lint =="
  scripts/docs_lint.sh

  echo "== static-analysis lint =="
  scripts/lint.sh

  echo "== critical-section scope lint =="
  scripts/cs_scope_lint.sh
fi

if [[ "${1:-}" != "--tsan-only" ]]; then
  echo "== ASan+UBSan build + full test suite =="
  cmake -B build-asan -S . -DCFS_SANITIZE=address,undefined >/dev/null
  cmake --build build-asan -j
  ctest --test-dir build-asan --output-on-failure -j "$(nproc)"
fi

if [[ "${1:-}" != "--asan-only" ]]; then
  echo "== ThreadSanitizer build + concurrency tests =="
  cmake -B build-tsan -S . -DCFS_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j --target "${TSAN_TESTS[@]}" cfs_core_test
  for t in "${TSAN_TESTS[@]}"; do
    echo "-- $t (tsan)"
    if [[ "$t" == lock_order_test ]]; then
      # The tracker tests execute lock inversions on purpose; TSan's own
      # lockdep would flag exactly those. Race detection stays on.
      TSAN_OPTIONS="detect_deadlocks=0" ./build-tsan/tests/"$t"
    else
      ./build-tsan/tests/"$t"
    fi
  done
  echo "-- cfs_core_test coherence suite (tsan)"
  ./build-tsan/tests/cfs_core_test --gtest_filter='*Coherence*'
fi

echo "== all checks passed =="
