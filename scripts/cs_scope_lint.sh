#!/usr/bin/env bash
# Critical-section scope lint: statically prove "no lock held across an RPC"
# for the CFS paths. Flags any SimNet RPC issue site (Call / Multicast /
# BeginCall / the LockPhaseCall wrapper) that is reachable while a
# MutexLock / ReaderMutexLock / WriterMutexLock guard is live — the static
# twin of the runtime RpcHoldPolicy enforcement in src/common/lock_order.h.
#
# Scope: src/{core,tafdb,txn,kv,wal,filestore,renamer}. src/baselines/ is
# allowlisted by construction — HopsFS/InfiniFS-style systems hold
# transaction row locks across RPC round trips on purpose; that is the
# baseline behaviour the paper measures against. (Those are logical
# LockManager scope locks, not mutex guards, so they would not match the
# guard scanner anyway.)
#
# The authoritative gate is a comment/string-stripping awk scanner that
# tracks brace depth, live guard variables, and `<guard>.Unlock()` /
# `<guard>.Lock()` toggles — so the sanctioned drop-the-lock-around-the-RPC
# idiom (e.g. TimestampCache::Next in src/txn/timestamp_oracle.h) passes.
# A site that must hold a guard across an RPC can be exempted with a
# `// cs-scope: allow(<reason>)` comment on the line or the line above; the
# parenthesized justification is mandatory (a bare `allow` does not exempt,
# and lint.sh independently fails bare escape markers). Marker spellings are
# documented in scripts/lint_allowlist.txt.
#
# When clang-query is on PATH an additional AST-matcher pass runs and is
# REQUIRED: each AST match must be resolvable — explained by a preceding
# `.Unlock()` toggle or a justified allow marker in the lines above it —
# or the lint fails. This machine may be gcc-only; the awk pass is always
# enforced.
#
# Usage: scripts/cs_scope_lint.sh [--grep-only]
set -euo pipefail
cd "$(dirname "$0")/.."

SCAN_DIRS=(src/core src/tafdb src/txn src/kv src/wal src/filestore src/renamer)

mapfile -t files < <(git ls-files "${SCAN_DIRS[@]/%//*.h}" "${SCAN_DIRS[@]/%//*.cc}")
if [[ ${#files[@]} -eq 0 ]]; then
  echo "cs_scope_lint: no files found under ${SCAN_DIRS[*]}" >&2
  exit 1
fi

echo "== cs_scope_lint: RPC-under-mutex-guard scan (${#files[@]} files) =="

violations=$(awk '
  FNR == 1 {
    depth = 0; nguards = 0; prev_allow = 0;
    delete gname; delete gdepth; delete gactive; delete gline;
  }
  {
    raw = $0;
    # Only a justified escape exempts: cs-scope: allow(<reason>).
    allow = prev_allow || (raw ~ /cs-scope: allow\([^)]+\)/);
    prev_allow = (raw ~ /cs-scope: allow\([^)]+\)/);

    line = raw;
    sub(/\/\/.*/, "", line);       # line comments
    gsub(/"[^"]*"/, "\"\"", line); # string literals (may contain braces / Call()
    gsub(/'"'"'[^'"'"']*'"'"'/, "", line); # char literals

    # New guard declaration: MutexLock lock(mu_); etc.
    if (match(line, /(MutexLock|ReaderMutexLock|WriterMutexLock)[ \t]+[A-Za-z_][A-Za-z0-9_]*[ \t]*\(/)) {
      decl = substr(line, RSTART, RLENGTH);
      sub(/^(MutexLock|ReaderMutexLock|WriterMutexLock)[ \t]+/, "", decl);
      sub(/[ \t]*\($/, "", decl);
      nguards++;
      gname[nguards] = decl; gactive[nguards] = 1; gline[nguards] = FNR;
      # Depth assigned after the brace update below (guard dies when the
      # enclosing block closes).
      gdepth[nguards] = -1;
    }

    # Manual guard toggles: the sanctioned drop-the-lock-around-an-RPC idiom.
    for (i = 1; i <= nguards; i++) {
      if (index(line, gname[i] ".Unlock()")) gactive[i] = 0;
      else if (index(line, gname[i] ".Lock()")) gactive[i] = 1;
    }

    # RPC issue site under a live guard?
    is_rpc = (line ~ /(^|[^A-Za-z0-9_])(LockPhaseCall|BeginCall|Multicast)[ \t]*\(/) || \
             (line ~ /[.>]Call[ \t]*\(/);
    if (is_rpc && !allow) {
      for (i = 1; i <= nguards; i++) {
        if (gactive[i]) {
          printf "%s:%d: RPC issued while mutex guard %c%s%c (declared line %d) is held\n", \
                 FILENAME, FNR, 39, gname[i], 39, gline[i];
        }
      }
    }

    # Brace depth bookkeeping; expire guards whose block closed.
    opens = gsub(/{/, "{", line); closes = gsub(/}/, "}", line);
    depth += opens - closes;
    if (depth < 0) depth = 0;
    kept = 0;
    for (i = 1; i <= nguards; i++) {
      if (gdepth[i] == -1) gdepth[i] = depth;  # declared this line
      if (depth >= gdepth[i] && depth > 0) {
        kept++;
        gname[kept] = gname[i]; gdepth[kept] = gdepth[i];
        gactive[kept] = gactive[i]; gline[kept] = gline[i];
      }
    }
    nguards = kept;
  }
' "${files[@]}")

if [[ -n "$violations" ]]; then
  echo "$violations" >&2
  echo "cs_scope_lint: FAILED — RPCs issued under a live mutex guard." >&2
  echo "cs_scope_lint: drop the guard around the round trip (guard.Unlock()/" >&2
  echo "cs_scope_lint: guard.Lock()) or annotate a justified site with" >&2
  echo "cs_scope_lint: '// cs-scope: allow(<reason>)' — the reason is mandatory." >&2
  exit 1
fi
echo "cs_scope_lint: clean — no RPC reachable under a live mutex guard"

if [[ "${1:-}" == "--grep-only" ]]; then
  exit 0
fi

# ---------------------------------------------------------------------------
# clang-query AST pass (required when clang is present): matches SimNet RPC
# calls lexically inside a compound statement that also declares a
# MutexLock-family guard. The matcher cannot model Unlock()/relock toggles,
# so each match must be *resolvable*: the source window above the match must
# contain either a `.Unlock()` toggle (the sanctioned drop-the-lock idiom)
# or a justified `cs-scope: allow(<reason>)` marker. An unresolvable match
# fails the lint.
if command -v clang-query >/dev/null 2>&1 && command -v clang++ >/dev/null 2>&1; then
  echo "== cs_scope_lint: clang-query AST pass (required) =="
  cmake -B build-tsa -S . -DCMAKE_CXX_COMPILER=clang++ \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  mapfile -t cc_files < <(git ls-files "${SCAN_DIRS[@]/%//*.cc}")
  ast_out=$(clang-query -p build-tsa "${cc_files[@]}" \
    -c 'match callExpr(callee(cxxMethodDecl(hasAnyName("Call","Multicast","BeginCall"), ofClass(hasName("::cfs::SimNet")))), hasAncestor(compoundStmt(hasDescendant(declStmt(containsDeclaration(0, varDecl(hasType(namedDecl(hasAnyName("MutexLock","ReaderMutexLock","WriterMutexLock"))))))))))' \
    2>/dev/null || true)
  # Each match reports a "binds here" note carrying file:line:col.
  mapfile -t sites < <(printf '%s\n' "$ast_out" |
    sed -n 's/^\([^ :]*\.cc\):\([0-9][0-9]*\):[0-9][0-9]*: note: .*binds here.*/\1:\2/p' |
    sort -u)
  ast_fail=0
  for site in "${sites[@]}"; do
    f=${site%:*}; ln=${site##*:}
    start=$(( ln > 40 ? ln - 40 : 1 ))
    ctx=$(sed -n "${start},${ln}p" "$f")
    if grep -qE 'cs-scope: allow\([^)]+\)' <<<"$ctx" ||
       grep -qF '.Unlock()' <<<"$ctx"; then
      echo "cs_scope_lint: AST match at $site resolved (guard toggle / allow marker)"
    else
      echo "cs_scope_lint: AST: unresolved RPC-under-guard match at $site" >&2
      ast_fail=1
    fi
  done
  if [[ "$ast_fail" -ne 0 ]]; then
    echo "cs_scope_lint: clang-query pass FAILED" >&2
    exit 1
  fi
  echo "cs_scope_lint: clang-query pass clean (${#sites[@]} matches, all resolved)"
else
  echo "cs_scope_lint: NOTICE: clang-query not found; skipping AST pass"
fi
