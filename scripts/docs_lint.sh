#!/usr/bin/env bash
# Docs-consistency lint: every tuning knob in CfsOptions (src/core/cfs.h)
# must appear in README.md's configuration table, so the shipped docs can't
# silently drift from the code. Fails listing the missing fields.
set -euo pipefail
cd "$(dirname "$0")/.."

# Collect CfsOptions field names: lines like "  <type> <name> = ...;" or
# "  <type> <name>;" inside the struct, skipping comments and nested-option
# struct members (TafDbOptions etc. are documented by their own headers, but
# the fields themselves still appear as knobs and belong in the table).
fields=$(awk '/^struct CfsOptions \{/,/^\};/' src/core/cfs.h |
  grep -E '^\s+[A-Za-z_][A-Za-z0-9_:<>]*\s+[a-z_]+(\s*=.*)?;\s*(//.*)?$' |
  grep -v '^\s*//' |
  sed -E 's/^\s*[A-Za-z_][A-Za-z0-9_:<>]*\s+([a-z_]+).*/\1/')

if [[ -z "$fields" ]]; then
  echo "docs_lint: failed to extract CfsOptions fields from src/core/cfs.h" >&2
  exit 1
fi

missing=0
for field in $fields; do
  if ! grep -q "\`$field\`" README.md; then
    echo "docs_lint: CfsOptions::$field is not documented in README.md" >&2
    missing=1
  fi
done

if [[ "$missing" -ne 0 ]]; then
  echo "docs_lint: add the missing knob(s) to README.md's CfsOptions table" >&2
  exit 1
fi
echo "docs_lint: README.md covers all $(echo "$fields" | wc -l) CfsOptions knobs"

# Every registered lock class — mutexes constructed per the single-line
# convention  Mutex mu_{"subsystem.name", rank};  (thread_annotations.h) —
# must appear in DESIGN.md's "Concurrency invariants" rank table with the
# same rank, so the documented hierarchy can't drift from the code.
locks=$(grep -rhoE '(Mutex|SharedMutex)[[:space:]]+[A-Za-z_]+\{"[a-z._]+",[[:space:]]*[0-9]+\}' \
          src/ --include='*.h' --include='*.cc' |
        sed -E 's/.*\{"([a-z._]+)",[[:space:]]*([0-9]+)\}/\1 \2/' | sort -u)

if [[ -z "$locks" ]]; then
  echo "docs_lint: failed to extract lock registrations from src/" >&2
  exit 1
fi

missing=0
while read -r name rank; do
  # A table row: | `name` | rank | ... (whitespace-flexible).
  if ! grep -qE "^\|\s*\`$name\`\s*\|\s*$rank\s*\|" DESIGN.md; then
    echo "docs_lint: lock class \"$name\" (rank $rank) is not in DESIGN.md's rank table" >&2
    missing=1
  fi
  # Every mutex class is never-across-rpc (only logical scope classes may
  # be allowed-across-rpc; see below); its policy column must say so.
  if ! grep -qE "^\|\s*\`$name\`\s*\|\s*$rank\s*\|\s*never-across-rpc\s*\|" DESIGN.md; then
    echo "docs_lint: mutex class \"$name\" must be documented never-across-rpc in DESIGN.md" >&2
    missing=1
  fi
done <<< "$locks"

if [[ "$missing" -ne 0 ]]; then
  echo "docs_lint: add the missing lock class(es) to DESIGN.md's Concurrency invariants table" >&2
  exit 1
fi
echo "docs_lint: DESIGN.md covers all $(echo "$locks" | wc -l) lock classes"

# Logical scope classes (no mutex object; registered through
# lock_order::RegisterClass with kAllowedAcrossRpc) carry a greppable
# marker comment at the registration site:
#     // cs-policy: allowed-across-rpc <class.name>
# Cross-check both directions: every marker has a matching
# allowed-across-rpc table row, and every allowed-across-rpc row in the
# table has a marker (so neither code nor docs can drift).
allowed_src=$(grep -rhoE 'cs-policy: allowed-across-rpc [a-z._]+' \
                src/ --include='*.h' --include='*.cc' |
              awk '{print $3}' | sort -u)
allowed_doc=$(grep -oE '^\|\s*`[a-z._]+`\s*\|\s*[0-9]+\s*\|\s*allowed-across-rpc\s*\|' DESIGN.md |
              sed -E 's/^\|\s*`([a-z._]+)`.*/\1/' | sort -u)

if [[ -z "$allowed_src" ]]; then
  echo "docs_lint: no cs-policy markers found in src/ (expected at least lockmgr.row)" >&2
  exit 1
fi
if [[ "$allowed_src" != "$allowed_doc" ]]; then
  echo "docs_lint: allowed-across-rpc classes disagree between src/ markers and DESIGN.md:" >&2
  diff <(echo "$allowed_src") <(echo "$allowed_doc") >&2 || true
  exit 1
fi
echo "docs_lint: DESIGN.md policy column matches $(echo "$allowed_src" | wc -l) allowed-across-rpc scope class(es)"

# Span taxonomy: the OpTrace phase names (PhaseName, metrics.cc) and the
# trace categories (CategoryName, trace_event.cc) must match DESIGN.md
# §10's taxonomy table, in BOTH directions — a phase/category added in
# code needs a documented meaning, and a documented row must still exist
# in code.
code_phases=$(awk '/^std::string_view PhaseName/,/^\}/' src/common/metrics.cc |
              grep -oE 'return "[a-z0-9_]+"' | sed -E 's/return "(.*)"/\1/' |
              grep -v '^unknown$' | sort -u)
code_cats=$(awk '/CategoryName\(Category/,/^\}/' src/common/trace_event.cc |
            grep -oE 'return "[a-z0-9_]+"' | sed -E 's/return "(.*)"/\1/' |
            grep -v '^unknown$' | sort -u)
doc_phases=$(grep -oE '^\|\s*`[a-z0-9_]+`\s*\|\s*phase\s*\|' DESIGN.md |
             sed -E 's/^\|\s*`([a-z0-9_]+)`.*/\1/' | sort -u)
doc_cats=$(grep -oE '^\|\s*`[a-z0-9_]+`\s*\|\s*category\s*\|' DESIGN.md |
           sed -E 's/^\|\s*`([a-z0-9_]+)`.*/\1/' | sort -u)

if [[ -z "$code_phases" || -z "$code_cats" ]]; then
  echo "docs_lint: failed to extract phase/category names from src/common" >&2
  exit 1
fi
if [[ "$code_phases" != "$doc_phases" ]]; then
  echo "docs_lint: OpTrace phases disagree between metrics.cc and DESIGN.md §10:" >&2
  diff <(echo "$code_phases") <(echo "$doc_phases") >&2 || true
  exit 1
fi
if [[ "$code_cats" != "$doc_cats" ]]; then
  echo "docs_lint: trace categories disagree between trace_event.cc and DESIGN.md §10:" >&2
  diff <(echo "$code_cats") <(echo "$doc_cats") >&2 || true
  exit 1
fi
echo "docs_lint: DESIGN.md §10 covers all $(echo "$code_phases" | wc -l) phases and $(echo "$code_cats" | wc -l) trace categories"

# Virtual-time documentation (DESIGN.md §11): every LatencyMode enumerator
# in src/net/simnet.h must appear in the "Virtual time and determinism"
# section, so the documented mode matrix can't drift from the enum.
modes=$(awk '/^enum class LatencyMode \{/,/^\};/' src/net/simnet.h |
        grep -oE '^\s*k[A-Za-z]+' | tr -d ' ' | sort -u)
if [[ -z "$modes" ]]; then
  echo "docs_lint: failed to extract LatencyMode enumerators from src/net/simnet.h" >&2
  exit 1
fi
section=$(awk '/^## 11\. Virtual time/,/^## 12\./' DESIGN.md)
if [[ -z "$section" ]]; then
  echo "docs_lint: DESIGN.md has no '## 11. Virtual time' section" >&2
  exit 1
fi
missing=0
for mode in $modes; do
  if ! grep -q "\`$mode\`" <<< "$section"; then
    echo "docs_lint: LatencyMode::$mode is not documented in DESIGN.md §11" >&2
    missing=1
  fi
done
if [[ "$missing" -ne 0 ]]; then
  echo "docs_lint: add the missing latency mode(s) to DESIGN.md §11's mode matrix" >&2
  exit 1
fi
echo "docs_lint: DESIGN.md §11 covers all $(echo "$modes" | wc -l) latency modes"

# Every CFS_SIM* env knob read anywhere in bench/ must appear in
# README.md's simulation knob table (same rule as CfsOptions fields).
sim_knobs=$(grep -rhoE 'CFS_SIM[A-Z0-9_]*' bench/ | sort -u)
if [[ -z "$sim_knobs" ]]; then
  echo "docs_lint: failed to extract CFS_SIM* knobs from bench/" >&2
  exit 1
fi
missing=0
for knob in $sim_knobs; do
  if ! grep -q "\`$knob\`" README.md; then
    echo "docs_lint: simulation knob $knob is not documented in README.md" >&2
    missing=1
  fi
done
if [[ "$missing" -ne 0 ]]; then
  echo "docs_lint: add the missing knob(s) to README.md's simulation-model table" >&2
  exit 1
fi
echo "docs_lint: README.md covers all $(echo "$sim_knobs" | wc -l) CFS_SIM* knobs"

# Every CFS_RACE* / CFS_SIM_FUZZ* env knob read by the race detector and
# the schedule fuzzer (src/common/) must appear in both README.md's knob
# table and DESIGN.md §12, so the auditing knobs cannot drift from the
# docs the same way CfsOptions/CFS_SIM* knobs cannot.
# Only quoted names (the strings passed to getenv), not CFS_RACE_* macros.
race_knobs=$(grep -rhoE '"CFS_(RACE|SIM_FUZZ)[A-Z0-9_]*"' src/common/ |
             tr -d '"' | sort -u)
if [[ -z "$race_knobs" ]]; then
  echo "docs_lint: failed to extract CFS_RACE*/CFS_SIM_FUZZ* knobs from src/common/" >&2
  exit 1
fi
race_section=$(sed -n '/^## 12\./,/^## /p' DESIGN.md)
missing=0
for knob in $race_knobs; do
  if ! grep -q "\`$knob\`" README.md; then
    echo "docs_lint: race-audit knob $knob is not documented in README.md" >&2
    missing=1
  fi
  if ! grep -q "\`$knob\`" <<< "$race_section"; then
    echo "docs_lint: race-audit knob $knob is not documented in DESIGN.md §12" >&2
    missing=1
  fi
done
if [[ "$missing" -ne 0 ]]; then
  echo "docs_lint: add the missing knob(s) to README.md and DESIGN.md §12" >&2
  exit 1
fi
echo "docs_lint: docs cover all $(echo "$race_knobs" | wc -l) CFS_RACE*/CFS_SIM_FUZZ* knobs"
