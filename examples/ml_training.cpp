// ML training example — the workload class the paper's introduction
// motivates: millions of tiny sample files, metadata operations dominating
// (67-96% of requests in Baidu's production traces), data access fast once
// attributes resolve.
//
// Phase 1 ingests a labelled dataset of small sample files (sizes drawn
// from the tr-1 file-size distribution). Phase 2 runs training epochs:
// every worker stats and reads random samples — a getattr/read-heavy loop
// whose metadata half lands on FileStore's hash-partitioned attribute tier.

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/common/random.h"
#include "src/core/cfs.h"
#include "src/core/gc.h"
#include "src/workload/traces.h"

int main() {
  using namespace cfs;

  constexpr size_t kClasses = 8;
  constexpr size_t kSamplesPerClass = 100;
  constexpr size_t kWorkers = 4;
  constexpr int kEpochs = 2;

  CfsOptions options = CfsFullOptions();
  options.num_servers = 6;
  options.tafdb.num_shards = 2;
  options.filestore.num_nodes = 4;
  Cfs fs(options);
  if (!fs.Start().ok()) return 1;

  auto spec = TraceTr1();  // small-file size distribution of Fig 14

  // ---- Phase 1: dataset ingestion ----
  auto setup = fs.NewClient();
  (void)setup->Mkdir("/dataset", 0755);
  for (size_t c = 0; c < kClasses; c++) {
    (void)setup->Mkdir("/dataset/class" + std::to_string(c), 0755);
  }
  Stopwatch ingest_watch;
  std::vector<std::thread> ingesters;
  std::atomic<uint64_t> ingested{0};
  std::atomic<uint64_t> bytes{0};
  for (size_t w = 0; w < kWorkers; w++) {
    ingesters.emplace_back([&, w] {
      auto client = fs.NewClient();
      Rng rng(1234 + w);
      for (size_t c = w; c < kClasses; c += kWorkers) {
        for (size_t s = 0; s < kSamplesPerClass; s++) {
          std::string path = "/dataset/class" + std::to_string(c) +
                             "/sample" + std::to_string(s) + ".bin";
          if (!client->Create(path, 0644).ok()) continue;
          size_t size = std::min<uint64_t>(
              SampleSize(spec.file_size_cdf, rng), 4096);
          if (client->Write(path, 0, std::string(size, 'd')).ok()) {
            ingested++;
            bytes += size;
          }
        }
      }
    });
  }
  for (auto& t : ingesters) t.join();
  std::printf("ingested %llu samples (%.1f KiB) in %.2fs (%.0f files/s)\n",
              static_cast<unsigned long long>(ingested.load()),
              bytes.load() / 1024.0, ingest_watch.ElapsedSeconds(),
              ingested.load() / ingest_watch.ElapsedSeconds());

  // ---- Phase 2: training epochs (stat + read loop) ----
  for (int epoch = 0; epoch < kEpochs; epoch++) {
    Stopwatch epoch_watch;
    std::atomic<uint64_t> reads{0};
    std::vector<std::thread> workers;
    for (size_t w = 0; w < kWorkers; w++) {
      workers.emplace_back([&, w] {
        auto client = fs.NewClient();
        Rng rng(999 * (epoch + 1) + w);
        for (size_t step = 0; step < kClasses * kSamplesPerClass / kWorkers;
             step++) {
          size_t c = rng.Uniform(kClasses);
          size_t s = rng.Uniform(kSamplesPerClass);
          std::string path = "/dataset/class" + std::to_string(c) +
                             "/sample" + std::to_string(s) + ".bin";
          auto info = client->GetAttr(path);  // stat before read (§3.2)
          if (!info.ok()) continue;
          if (client->Read(path, 0, static_cast<size_t>(info->size)).ok()) {
            reads++;
          }
        }
      });
    }
    for (auto& t : workers) t.join();
    std::printf("epoch %d: %llu sample reads in %.2fs (%.0f samples/s)\n",
                epoch,
                static_cast<unsigned long long>(reads.load()),
                epoch_watch.ElapsedSeconds(),
                reads.load() / epoch_watch.ElapsedSeconds());
  }

  // The attribute traffic spread across every FileStore node (tiered
  // metadata), not one namespace shard:
  for (size_t n = 0; n < fs.filestore()->num_nodes(); n++) {
    std::printf("filestore node %zu served %llu rpcs\n", n,
                static_cast<unsigned long long>(fs.net()->CallsTo(
                    fs.filestore()->node(n)->ServiceNetId())));
  }

  fs.Stop();
  return 0;
}
