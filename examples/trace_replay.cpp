// Trace replay example — synthesizes the paper's three production traces
// (tr-0 read-only, tr-1 read-intensive with writes/renames, tr-2 mixed
// office/automation) from the published statistics (Table 3 op mixes,
// Fig 14 size distributions) and replays them against CFS with data access
// enabled, printing throughput and tail latency per trace (the Fig 15
// quantities for a single system).

#include <cstdio>

#include "src/core/cfs.h"
#include "src/core/gc.h"
#include "src/workload/traces.h"

int main() {
  using namespace cfs;

  CfsOptions options = CfsFullOptions();
  options.num_servers = 6;
  options.tafdb.num_shards = 2;
  options.filestore.num_nodes = 2;
  Cfs fs(options);
  if (!fs.Start().ok()) return 1;

  constexpr size_t kClients = 4;

  std::printf("%-6s %12s %14s %12s %12s\n", "trace", "fs ops/s",
              "metadata ops/s", "fs P999(us)", "errors");
  for (const auto& spec : AllTraces()) {
    TraceReplayConfig config;
    config.num_dirs = 4;
    config.files_per_dir = 32;
    config.duration_ms = 1500;
    config.warmup_ms = 200;

    TraceReplayer replayer(spec, config);
    auto setup = fs.NewClient();
    std::vector<std::unique_ptr<MetadataClient>> populate_owned;
    std::vector<MetadataClient*> populate;
    for (size_t i = 0; i < kClients; i++) {
      populate_owned.push_back(fs.NewClient());
      populate.push_back(populate_owned.back().get());
    }
    if (Status st = replayer.Prepare(setup.get(), populate); !st.ok()) {
      std::fprintf(stderr, "prepare failed for %s: %s\n", spec.name.c_str(),
                   st.ToString().c_str());
      return 1;
    }

    std::vector<std::unique_ptr<MetadataClient>> clients;
    for (size_t i = 0; i < kClients; i++) clients.push_back(fs.NewClient());
    TraceReplayResult result = replayer.Replay(std::move(clients));

    std::printf("%-6s %12.0f %14.0f %12lld %12llu\n", spec.name.c_str(),
                result.fs_ops_per_sec(), result.meta_ops_per_sec(),
                static_cast<long long>(result.fs_latency.P999()),
                static_cast<unsigned long long>(result.errors));
  }

  fs.Stop();
  return 0;
}
