// cfs_mdtest — an mdtest-style command-line driver (the paper evaluates
// with "mdtest-like benchmarks", §5.1). Boots an in-process cluster of the
// chosen system and runs one metadata phase, printing throughput and
// latency percentiles.
//
// Usage:
//   cfs_mdtest [--system=cfs|cfs-base|hopsfs|infinifs]
//              [--op=create|unlink|mkdir|rmdir|lookup|getattr|setattr|readdir]
//              [--clients=N] [--seconds=S] [--contention=0..100]
//              [--files-per-dir=N] [--latency=zero|sleep]
//
// Examples:
//   cfs_mdtest --op=create --clients=16 --contention=100
//   cfs_mdtest --system=infinifs --op=getattr --files-per-dir=128

#include <cstring>

#include "bench/bench_common.h"

using namespace cfs;
using namespace cfs::bench;

namespace {

struct Args {
  std::string system = "cfs";
  std::string op = "create";
  size_t clients = 8;
  int seconds = 3;
  double contention = 0.0;
  size_t files_per_dir = 64;
  bool sleep_latency = true;

  static Args Parse(int argc, char** argv) {
    Args args;
    for (int i = 1; i < argc; i++) {
      std::string arg = argv[i];
      auto value = [&](const char* key) -> const char* {
        size_t len = std::strlen(key);
        if (arg.compare(0, len, key) == 0) return arg.c_str() + len;
        return nullptr;
      };
      if (const char* v = value("--system=")) args.system = v;
      else if (const char* v2 = value("--op=")) args.op = v2;
      else if (const char* v3 = value("--clients=")) args.clients = std::atoi(v3);
      else if (const char* v4 = value("--seconds=")) args.seconds = std::atoi(v4);
      else if (const char* v5 = value("--contention=")) {
        args.contention = std::atof(v5) / 100.0;
      } else if (const char* v6 = value("--files-per-dir=")) {
        args.files_per_dir = std::atoi(v6);
      } else if (const char* v7 = value("--latency=")) {
        args.sleep_latency = std::string(v7) != "zero";
      } else {
        std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
        std::exit(2);
      }
    }
    return args;
  }
};

System MakeSystem(const Args& args) {
  if (args.system == "hopsfs") return MakeHopsFs();
  if (args.system == "infinifs") return MakeInfiniFs();
  if (args.system == "cfs-base") return MakeCfs("CFS-base", CfsBaseOptions());
  if (args.system == "cfs") return MakeCfsFull();
  std::fprintf(stderr, "unknown system: %s\n", args.system.c_str());
  std::exit(2);
}

OpFn MakeOp(const Args& args) {
  double c = args.contention;
  size_t files = args.files_per_dir;
  if (args.op == "create") return MakeCreateOp(c);
  if (args.op == "unlink") return MakeUnlinkAfterCreateOp(c);
  if (args.op == "mkdir") return MakeMkdirOp(c);
  if (args.op == "rmdir") return MakeRmdirAfterMkdirOp(c);
  if (args.op == "lookup") return MakeLookupOp(c, files, files);
  if (args.op == "getattr") return MakeGetAttrOp(c, files, files);
  if (args.op == "setattr") return MakeSetAttrOp(c, files, files);
  if (args.op == "readdir") return MakeReaddirOp(c);
  std::fprintf(stderr, "unknown op: %s\n", args.op.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  Logger::Get().set_level(LogLevel::kWarn);
  Args args = Args::Parse(argc, argv);
  if (!args.sleep_latency) {
    // Zero-latency mode: functional smoke rather than performance shape.
    setenv("CFS_BENCH_DURATION_MS", "500", 0);
  }

  std::fprintf(stderr, "booting %s...\n", args.system.c_str());
  System system = MakeSystem(args);
  // Zero-latency override must happen before any RPC-heavy setup.
  if (!args.sleep_latency) {
    system.net()->set_mode(LatencyMode::kZero);
  }

  bool needs_population = args.op == "lookup" || args.op == "getattr" ||
                          args.op == "setattr" || args.op == "readdir";
  PreparePopulation(system, args.clients,
                    needs_population ? args.files_per_dir : 0,
                    needs_population && args.contention > 0
                        ? args.files_per_dir
                        : 0);

  std::fprintf(stderr, "running %s x%zu clients for %ds (%.0f%% contention)\n",
               args.op.c_str(), args.clients, args.seconds,
               args.contention * 100);
  WorkloadRunner runner(system.MakeClients(args.clients));
  RunResult result = runner.Run(MakeOp(args), args.seconds * 1000,
                                std::min(args.seconds * 250, 1000));

  std::printf("system      : %s\n", system.name.c_str());
  std::printf("op          : %s\n", args.op.c_str());
  std::printf("clients     : %zu\n", args.clients);
  std::printf("contention  : %.0f%%\n", args.contention * 100);
  std::printf("throughput  : %.1f ops/s (%.2f Kops/s)\n", result.ops_per_sec(),
              result.kops());
  std::printf("latency     : %s\n", result.latency.Summary().c_str());
  std::printf("errors      : %llu / %llu ops\n",
              static_cast<unsigned long long>(result.errors),
              static_cast<unsigned long long>(result.ops));
  system.stop();
  return result.errors == 0 ? 0 : 1;
}
