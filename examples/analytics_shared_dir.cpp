// Big-data analytics example — the high-contention pattern §2.2 calls out:
// "applications like big data analysis often concurrently read from or
// write to a shared directory". Every reducer writes its part-file into one
// output directory, so every create updates the same parent attributes.
//
// The example runs the same job twice: once on full CFS (single-shard
// atomic primitives merge the counter updates without locks) and once on
// the lock-based configuration (CFS-base), printing the throughput gap —
// a miniature of Figure 11.

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/core/cfs.h"
#include "src/core/gc.h"

namespace {

struct JobResult {
  double seconds = 0;
  uint64_t parts = 0;
};

JobResult RunJob(cfs::Cfs* fs, size_t reducers, size_t parts_per_reducer) {
  using namespace cfs;
  auto setup = fs->NewClient();
  (void)setup->Mkdir("/output", 0755);

  Stopwatch watch;
  std::atomic<uint64_t> written{0};
  std::vector<std::thread> workers;
  for (size_t r = 0; r < reducers; r++) {
    workers.emplace_back([&, r] {
      auto client = fs->NewClient();
      for (size_t p = 0; p < parts_per_reducer; p++) {
        std::string path = "/output/part-" + std::to_string(r) + "-" +
                           std::to_string(p);
        if (!client->Create(path, 0644).ok()) continue;
        if (client->Write(path, 0, "rowgroup-data").ok()) written++;
      }
    });
  }
  for (auto& t : workers) t.join();

  JobResult result;
  result.seconds = watch.ElapsedSeconds();
  result.parts = written.load();

  // _SUCCESS marker and a consistency audit: the shared directory's
  // delta-applied children counter must equal the real fanout.
  (void)setup->Create("/output/_SUCCESS", 0644);
  auto dir = setup->GetAttr("/output");
  auto listing = setup->ReadDir("/output");
  std::printf("  audit: children counter=%lld, listed=%zu\n",
              static_cast<long long>(dir->children), listing->size());
  return result;
}

}  // namespace

int main() {
  using namespace cfs;
  constexpr size_t kReducers = 8;
  constexpr size_t kParts = 40;

  struct Config {
    const char* label;
    CfsOptions options;
  };
  std::vector<Config> configs = {
      {"full CFS (primitives, no locks)", CfsFullOptions()},
      {"lock-based (CFS-base)", CfsBaseOptions()},
  };

  double baseline_rate = 0;
  for (auto& config : configs) {
    config.options.num_servers = 6;
    config.options.tafdb.num_shards = 2;
    config.options.filestore.num_nodes = 2;
    Cfs fs(config.options);
    if (!fs.Start().ok()) return 1;
    std::printf("%s:\n", config.label);
    JobResult result = RunJob(&fs, kReducers, kParts);
    double rate = result.parts / result.seconds;
    std::printf("  %llu part-files in %.2fs -> %.0f creates/s\n",
                static_cast<unsigned long long>(result.parts), result.seconds,
                rate);
    if (baseline_rate == 0) {
      baseline_rate = rate;
    } else {
      std::printf("  -> full CFS speedup over lock-based: %.2fx\n",
                  baseline_rate / rate);
    }
    fs.Stop();
  }
  return 0;
}
