// Quickstart: boot an in-process CFS cluster (TafDB + FileStore + Renamer +
// GC, all raft-replicated) and walk through the public API — the metadata
// operations of the paper plus the data path and the POSIX adapter.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart

#include <cstdio>

#include "src/core/cfs.h"
#include "src/core/gc.h"
#include "src/core/posix.h"

int main() {
  using namespace cfs;

  // 1. Assemble the cluster. CfsFullOptions() enables all three paper
  //    optimizations: tiered attributes, single-shard atomic primitives,
  //    and client-side metadata resolving.
  CfsOptions options = CfsFullOptions();
  options.num_servers = 6;
  options.tafdb.num_shards = 2;
  options.filestore.num_nodes = 2;
  Cfs fs(options);
  if (Status st = fs.Start(); !st.ok()) {
    std::fprintf(stderr, "start failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("cluster up: %zu TafDB shards, %zu FileStore nodes\n",
              fs.tafdb()->num_shards(), fs.filestore()->num_nodes());

  // 2. Metadata operations via the client library.
  auto client = fs.NewClient();
  (void)client->Mkdir("/projects", 0755);
  (void)client->Mkdir("/projects/cfs", 0755);
  (void)client->Create("/projects/cfs/paper.tex", 0644);
  (void)client->Symlink("/projects/cfs/paper.tex", "/projects/latest");

  auto info = client->GetAttr("/projects/cfs/paper.tex");
  std::printf("created file: inode=%llu mode=%o links=%lld\n",
              static_cast<unsigned long long>(info->id), info->mode,
              static_cast<long long>(info->links));

  // 3. Data path: blocks live in FileStore next to the file's attributes.
  (void)client->Write("/projects/cfs/paper.tex", 0,
                      "\\title{Pruned Scope of Critical Sections}");
  auto content = client->Read("/projects/cfs/paper.tex", 0, 64);
  std::printf("read back: %s\n", content->c_str());

  // 4. Rename fast path (same directory, file-to-file: one single-shard
  //    atomic primitive, no Renamer round trip) and normal path.
  (void)client->Rename("/projects/cfs/paper.tex", "/projects/cfs/camera.tex");
  (void)client->Mkdir("/archive", 0755);
  (void)client->Rename("/projects/cfs", "/archive/cfs-eurosys23");
  std::printf("renamer handled %llu normal-path renames\n",
              static_cast<unsigned long long>(fs.renamer()->stats().committed));

  auto entries = client->ReadDir("/archive/cfs-eurosys23");
  std::printf("archive listing (%zu entries):\n", entries->size());
  for (const auto& e : *entries) {
    std::printf("  %-16s inode=%llu%s\n", e.name.c_str(),
                static_cast<unsigned long long>(e.id),
                e.type == InodeType::kDirectory ? "/" : "");
  }

  // 5. The POSIX-style adapter (the VFS-facing surface of §3.2).
  PosixFs posix(fs.NewClient());
  int fd = posix.Open("/archive/cfs-eurosys23/notes.txt", kOCreat, 0600);
  posix.PWrite(fd, "single-shard primitives prune critical sections", 0);
  StatBuf st;
  posix.Stat("/archive/cfs-eurosys23/notes.txt", &st);
  std::printf("posix stat: ino=%llu size=%lld mode=%o\n",
              static_cast<unsigned long long>(st.ino),
              static_cast<long long>(st.size), st.mode);
  posix.Close(fd);

  fs.Stop();
  std::printf("done.\n");
  return 0;
}
