// trace_dump — the causal-tracing report tool (DESIGN.md §10).
//
// Boots a small CFS cluster in sleep-mode SimNet (so spans have real
// durations), traces EVERY op (sample_every=1, low slow threshold), runs a
// mixed metadata workload including cross-directory renames, then prints:
//   1. the top-N slowest ops as indented span trees (which shard, which
//      RPC edge, which lock queue the time went to),
//   2. the span-tree-derived phase shares next to the OpTrace accumulator
//      shares — two independent readouts of one instrumented path, which
//      must agree,
//   3. optionally, the full Perfetto JSON (load at https://ui.perfetto.dev).
//
// Usage:  trace_dump [top_n] [perfetto_out.json]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/trace_event.h"
#include "src/core/cfs.h"
#include "src/workload/workload.h"

int main(int argc, char** argv) {
  using namespace cfs;

  size_t top_n = argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 5;
  const char* perfetto_path = argc > 2 ? argv[2] : nullptr;

  // Trace everything: head sampling at 1 keeps every op, and a 1ms slow
  // threshold exercises tail capture under sleep-mode RPC latency.
  trace::TraceOptions trace_options;
  trace_options.enabled = true;
  trace_options.sample_every = 1;
  trace_options.slow_op_threshold_us = 1000;
  trace_options.max_retained_ops = 4096;
  trace::TraceCollector::Global().Configure(trace_options);

  CfsOptions options = CfsFullOptions();
  options.num_servers = 4;
  options.tafdb.num_shards = 4;
  options.tafdb.range_stripe_width = 2;
  options.filestore.num_nodes = 2;
  options.net.mode = LatencyMode::kSleep;
  options.net.cross_node_rtt_us = 150;
  options.net.same_node_rtt_us = 5;
  Cfs fs(options);
  if (Status st = fs.Start(); !st.ok()) {
    std::fprintf(stderr, "start failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // A mixed workload touching every instrumented subsystem: creates and
  // getattrs (resolve + shard exec + WAL/raft), plus cross-directory
  // renames (renamer coordination, dirlocks, ordered multi-shard steps).
  auto client = fs.NewClient();
  PhaseBreakdown accumulated;
  auto run_op = [&](const char* name, const std::function<Status()>& fn) {
    OpTrace::Begin(name);
    Status st = fn();
    accumulated.Add(OpTrace::Finish());
    if (!st.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", name, st.ToString().c_str());
    }
  };

  run_op("mkdir", [&] { return client->Mkdir("/a", 0755); });
  run_op("mkdir", [&] { return client->Mkdir("/b", 0755); });
  for (int i = 0; i < 16; i++) {
    std::string file = "/a/f" + std::to_string(i);
    run_op("create", [&] { return client->Create(file, 0644); });
  }
  for (int i = 0; i < 16; i++) {
    std::string file = "/a/f" + std::to_string(i);
    run_op("getattr", [&] { return client->GetAttr(file).status(); });
  }
  // Cross-directory renames take the Renamer normal path: dirlocks, a
  // loop check, and deterministically ordered multi-shard primitives.
  for (int i = 0; i < 8; i++) {
    std::string src = "/a/f" + std::to_string(i);
    std::string dst = "/b/g" + std::to_string(i);
    run_op("rename", [&] { return client->Rename(src, dst); });
  }
  run_op("readdir", [&] { return client->ReadDir("/b").status(); });

  trace::TraceCollector& collector = trace::TraceCollector::Global();

  // 1. Slowest ops, as causal span trees. The slow-op log keeps the
  // slowest ops seen; retained ops cover everything else.
  std::vector<trace::OpRecord> slow = collector.SnapshotSlowOps();
  std::printf("=== top %zu slowest ops (of %zu tail-captured) ===\n\n",
              top_n < slow.size() ? top_n : slow.size(), slow.size());
  for (size_t i = 0; i < slow.size() && i < top_n; i++) {
    std::printf("%s\n", trace::FormatOpTree(slow[i], collector).c_str());
  }

  // 2. Cross-check: phase shares derived from span trees vs the OpTrace
  // accumulators. Same clock reads feed both, so they agree by
  // construction; a drift here means an AddPhase site lost its event
  // mirror (or vice versa). Slow ops land in the slow-op log INSTEAD of
  // the retained store, so the comparison set is the union of both —
  // with sample_every=1 that is every op, matching the accumulator.
  std::vector<trace::OpRecord> retained = collector.SnapshotRetained();
  retained.insert(retained.end(), slow.begin(), slow.end());
  int64_t span_us[kNumPhases] = {};
  int64_t span_total = 0;
  for (const trace::OpRecord& op : retained) {
    span_total += op.total_us;
    std::vector<int64_t> per_phase =
        trace::PhaseUsFromEvents(op.events, kNumPhases);
    for (size_t p = 0; p < kNumPhases; p++) span_us[p] += per_phase[p];
  }
  std::printf("=== phase shares: span-derived vs accumulator (%zu ops) ===\n",
              retained.size());
  std::printf("%-14s %10s %10s %8s\n", "phase", "span_pct", "accum_pct",
              "delta");
  double worst = 0;
  for (size_t p = 0; p < kNumPhases; p++) {
    if (span_us[p] == 0 && accumulated.us[p] == 0) continue;
    double span_share = span_total > 0
                            ? 100.0 * static_cast<double>(span_us[p]) /
                                  static_cast<double>(span_total)
                            : 0;
    double acc_share = 100.0 * accumulated.Share(static_cast<Phase>(p));
    double delta =
        span_share > acc_share ? span_share - acc_share : acc_share - span_share;
    if (delta > worst) worst = delta;
    std::printf("%-14s %9.1f%% %9.1f%% %7.2f\n",
                std::string(PhaseName(static_cast<Phase>(p))).c_str(),
                span_share, acc_share, delta);
  }
  std::printf("worst delta: %.2f points %s\n\n", worst,
              worst <= 5.0 ? "(within 5-point agreement bound)"
                           : "(EXCEEDS 5-point agreement bound)");

  // 3. Perfetto export.
  if (perfetto_path != nullptr) {
    if (collector.WritePerfettoJson(perfetto_path)) {
      std::printf("wrote Perfetto trace: %s (load at ui.perfetto.dev)\n",
                  perfetto_path);
    } else {
      std::fprintf(stderr, "cannot write %s\n", perfetto_path);
    }
  }

  trace::TraceCollector::Stats stats = collector.stats();
  std::printf("trace stats: ops_seen=%llu retained=%llu slow=%llu "
              "events_dropped=%llu\n",
              static_cast<unsigned long long>(stats.ops_seen),
              static_cast<unsigned long long>(stats.ops_retained),
              static_cast<unsigned long long>(stats.ops_slow),
              static_cast<unsigned long long>(stats.events_dropped));

  fs.Stop();
  return worst <= 5.0 ? 0 : 1;
}
