// Critical-section scope report (run via scripts/cs_scope_report.sh).
//
// Drives the same metadata workload through CFS and both baselines
// (HopsFS-like, InfiniFS-like), then prints a markdown table per system
// from the lock_order scope accounting: for every exercised lock class its
// RPC-hold policy, hold counts, max hold time, RPCs issued while held, and
// the hold-span split by RPCs-under-lock bucket. This reproduces the
// paper's scope-comparison narrative as a checkable artifact:
//
//   - every never-across-rpc class must show 0 RPCs-under-lock on every
//     system (CFS's pruned critical sections);
//   - the baselines' transaction row locks (lockmgr.row) and the CFS
//     renamer's directory locks (renamer.dirlock) — the only
//     allowed-across-rpc classes — show >0, quantifying the scope the
//     paper prunes.
//
// RPC enforcement is switched off for the run (SetRpcEnforcement(false))
// so the tool *measures* rather than aborts; the final verdict fails the
// process if any never-across-rpc class saw an RPC while held.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/baselines/hopsfs/hopsfs.h"
#include "src/baselines/infinifs/infinifs.h"
#include "src/common/lock_order.h"
#include "src/common/logging.h"
#include "src/core/cfs.h"
#include "src/core/metadata_client.h"

using namespace cfs;

#ifndef CFS_LOCK_ORDER_TRACKING

int main() {
  std::fprintf(stderr,
               "cs_scope_report: built without CFS_LOCK_ORDER_TRACKING "
               "(configure with -DCFS_LOCK_ORDER=ON)\n");
  return 2;
}

#else

namespace {

CfsOptions SmallCfs() {
  CfsOptions options = CfsFullOptions();
  options.num_servers = 6;
  options.tafdb.num_shards = 2;
  options.tafdb.range_stripe_width = 4;
  options.tafdb.raft.election_timeout_min_ms = 50;
  options.tafdb.raft.election_timeout_max_ms = 100;
  options.tafdb.raft.heartbeat_interval_ms = 20;
  options.filestore.num_nodes = 2;
  options.filestore.raft = options.tafdb.raft;
  options.renamer.raft = options.tafdb.raft;
  return options;
}

BaselineOptions SmallBaseline() {
  BaselineOptions options;
  options.num_servers = 6;
  options.num_proxies = 2;
  options.tafdb.num_shards = 3;
  options.tafdb.raft.election_timeout_min_ms = 50;
  options.tafdb.raft.election_timeout_max_ms = 100;
  options.tafdb.raft.heartbeat_interval_ms = 20;
  options.filestore.num_nodes = 2;
  options.filestore.raft = options.tafdb.raft;
  return options;
}

// The op mix every system runs: directory tree building, file churn,
// reads, a cross-parent directory rename (the renamer's dir-lock path),
// then teardown.
void RunWorkload(MetadataClient* client) {
  auto check = [](const char* what, const Status& st) {
    if (!st.ok()) {
      std::fprintf(stderr, "cs_scope_report: %s failed: %s\n", what,
                   st.ToString().c_str());
      std::exit(1);
    }
  };
  check("mkdir /a", client->Mkdir("/a", 0755));
  check("mkdir /b", client->Mkdir("/b", 0755));
  for (int i = 0; i < 32; i++) {
    check("create", client->Create("/a/f" + std::to_string(i), 0644));
  }
  for (int i = 0; i < 32; i++) {
    check("lookup", client->Lookup("/a/f" + std::to_string(i)).status());
    check("getattr", client->GetAttr("/a/f" + std::to_string(i)).status());
  }
  check("readdir", client->ReadDir("/a").status());
  check("mkdir /a/sub", client->Mkdir("/a/sub", 0755));
  check("rename dir", client->Rename("/a/sub", "/b/sub"));
  check("rename file", client->Rename("/a/f0", "/b/g0"));
  for (int i = 1; i < 8; i++) {
    check("unlink", client->Unlink("/a/f" + std::to_string(i)));
  }
  check("rmdir", client->Rmdir("/b/sub"));
}

std::string Subsystem(const std::string& cls) {
  auto dot = cls.find('.');
  return dot == std::string::npos ? cls : cls.substr(0, dot);
}

// Markdown table of every class exercised during the run (holds or RPC
// activity), grouped by subsystem prefix.
void PrintTable(const std::string& system,
                const std::vector<lock_order::ClassScope>& snapshot) {
  std::printf("\n## %s\n\n", system.c_str());
  std::printf(
      "| subsystem | lock class | policy | holds | max hold (us) | "
      "RPCs under lock | holds w/ RPC | spans 0/1/2-7/8+ RPCs |\n");
  std::printf("|---|---|---|---:|---:|---:|---:|---|\n");
  std::vector<lock_order::ClassScope> rows;
  for (const auto& cs : snapshot) {
    if (cs.holds > 0 || cs.rpcs_under_lock > 0 || cs.rpc_violations > 0) {
      rows.push_back(cs);
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const lock_order::ClassScope& a,
               const lock_order::ClassScope& b) { return a.name < b.name; });
  for (const auto& cs : rows) {
    std::printf("| %s | `%s` | %s | %llu | %lld | %llu | %llu | "
                "%llu/%llu/%llu/%llu |\n",
                Subsystem(cs.name).c_str(), cs.name.c_str(),
                lock_order::RpcHoldPolicyName(cs.policy),
                static_cast<unsigned long long>(cs.holds),
                static_cast<long long>(cs.max_hold_us),
                static_cast<unsigned long long>(cs.rpcs_under_lock),
                static_cast<unsigned long long>(cs.holds_with_rpc),
                static_cast<unsigned long long>(cs.rpc_buckets[0].holds),
                static_cast<unsigned long long>(cs.rpc_buckets[1].holds),
                static_cast<unsigned long long>(cs.rpc_buckets[2].holds),
                static_cast<unsigned long long>(cs.rpc_buckets[3].holds));
  }
}

struct SystemResult {
  std::string name;
  std::vector<lock_order::ClassScope> snapshot;
};

}  // namespace

int main() {
  Logger::Get().set_level(LogLevel::kWarn);
  // Measure, don't abort: violations are counted in the scope stats and
  // turned into a failing verdict below.
  lock_order::SetRpcEnforcement(false);

  std::vector<SystemResult> results;

  {
    lock_order::ResetScopeStats();
    Cfs fs(SmallCfs());
    if (!fs.Start().ok()) { std::fprintf(stderr, "CFS start failed\n"); return 1; }
    { auto client = fs.NewClient(); RunWorkload(client.get()); }
    fs.Stop();
    results.push_back({"CFS (full)", lock_order::ScopeSnapshot()});
  }
  {
    lock_order::ResetScopeStats();
    HopsFsCluster cluster("hopsfs", SmallBaseline());
    if (!cluster.Start().ok()) { std::fprintf(stderr, "HopsFS start failed\n"); return 1; }
    { auto client = cluster.NewClient(); RunWorkload(client.get()); }
    cluster.Stop();
    results.push_back({"HopsFS-like baseline", lock_order::ScopeSnapshot()});
  }
  {
    lock_order::ResetScopeStats();
    InfiniFsCluster cluster("infinifs", SmallBaseline());
    if (!cluster.Start().ok()) { std::fprintf(stderr, "InfiniFS start failed\n"); return 1; }
    { auto client = cluster.NewClient(); RunWorkload(client.get()); }
    cluster.Stop();
    results.push_back({"InfiniFS-like baseline", lock_order::ScopeSnapshot()});
  }

  std::printf("# Critical-section scope report\n\n");
  std::printf(
      "Same metadata workload on each system (mkdir / create / lookup / "
      "getattr / readdir / rename / unlink / rmdir). Policy "
      "`never-across-rpc` classes must show 0 RPCs under lock; "
      "`allowed-across-rpc` classes quantify the critical-section scope "
      "the paper prunes.\n");
  for (const auto& r : results) PrintTable(r.name, r.snapshot);

  // Verdict: the acceptance claim, machine-checked.
  std::printf("\n## Verdict\n\n");
  bool ok = true;
  for (const auto& r : results) {
    uint64_t never_rpcs = 0, allowed_rpcs = 0, row_rpcs = 0;
    for (const auto& cs : r.snapshot) {
      if (cs.policy == lock_order::RpcHoldPolicy::kNeverAcrossRpc) {
        never_rpcs += cs.rpcs_under_lock;
        if (cs.rpcs_under_lock > 0) {
          std::printf("- **FAIL** %s: never-across-rpc class `%s` saw %llu "
                      "RPC(s) while held\n",
                      r.name.c_str(), cs.name.c_str(),
                      static_cast<unsigned long long>(cs.rpcs_under_lock));
          ok = false;
        }
      } else {
        allowed_rpcs += cs.rpcs_under_lock;
        if (cs.name == "lockmgr.row") row_rpcs = cs.rpcs_under_lock;
      }
    }
    std::printf("- %s: %llu RPCs under never-across-rpc locks, %llu under "
                "allowed-across-rpc scopes (lockmgr.row: %llu)\n",
                r.name.c_str(), static_cast<unsigned long long>(never_rpcs),
                static_cast<unsigned long long>(allowed_rpcs),
                static_cast<unsigned long long>(row_rpcs));
    // The baselines' lock-based transactions must actually be measured
    // holding row locks across round trips — a zero would mean the report
    // lost its instrumentation, not that the baselines got better.
    if (r.name != "CFS (full)" && row_rpcs == 0) {
      std::printf("- **FAIL** %s: expected lockmgr.row to span RPCs\n",
                  r.name.c_str());
      ok = false;
    }
  }
  std::printf("\n%s\n", ok ? "All never-across-rpc classes held zero locks "
                             "across RPCs."
                           : "Scope violations found (see FAIL rows).");
  return ok ? 0 : 1;
}

#endif  // CFS_LOCK_ORDER_TRACKING
